package experiments

import (
	"fmt"

	"rjoin/internal/churn"
	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/workload"
)

// recoveryChurn is the crash-heavy membership trace FigRecovery replays
// under every replication factor: occasional joins, frequent crashes —
// the regime where the counted-loss model of the churn figure bleeds
// answers, and the regime replication exists for.
var recoveryChurn = workload.ChurnConfig{JoinRate: 5, CrashRate: 25}

// FigRecovery measures what durable state replication buys and what it
// costs. One fixed workload — queries up front, then a tuple stream
// with the clock advancing so a pre-drawn crash-heavy churn trace fires
// between publications — runs once per replication factor k ∈ {1, 2,
// 3}; a static run is the completeness reference. k = 1 keeps only the
// primary copy (the churn subsystem's counted-loss model); k >= 2
// mirrors every keyed state entry on the k−1 ring successors, and each
// crash promotes the surviving replica the ring routes to. Reported
// per k: answer completeness against the reference (recall reaches 1.0
// at k >= 2 under single-node crashes), the counted state loss and the
// promotion work, and the replication overhead — replica-update
// messages as a share of total traffic.
func FigRecovery(p Params) []*metrics.Table {
	queries := p.scaled(200)
	tuples := p.scaled(600)

	type result struct {
		k        int
		stats    churn.Stats
		counters core.Counters
		traffic  int64
		replTfc  int64
		comp     metrics.Completeness
		nodes    int
	}
	var results []result
	var reference map[string]map[string]int64 // query ID → row multiset

	// factor 0 is the static reference; 1..3 run the crash trace.
	for _, k := range []int{0, 1, 2, 3} {
		cfg := core.DefaultConfig()
		if k >= 2 {
			cfg.ReplicationFactor = k
		}
		netCfg := overlay.DefaultConfig()
		netCfg.Bounce = true
		wcfg := workload.PaperConfig()
		wcfg.JoinArity = 2
		wcfg.Values = 20
		r := newRunNet(p, cfg, wcfg, netCfg)
		mgr := churn.New(r.eng, churn.Config{
			MinNodes: p.Nodes / 2,
			Seed:     p.Seed + 7,
		})

		for i := 0; i < queries; i++ {
			if _, err := r.eng.SubmitQuery(r.node(), r.gen.Query()); err != nil {
				panic(err) // generator output is valid by construction
			}
		}
		r.eng.Run()

		if k > 0 {
			// The same trace for every factor, shifted past the query
			// phase: durability is the only variable.
			trace := workload.MustChurnTrace(recoveryChurn, int64(tuples)*8, p.Seed+11)
			offset := int64(r.eng.Sim().Now())
			for i := range trace {
				trace[i].At += offset
			}
			mgr.Schedule(trace)
		}
		for i := 0; i < tuples; i++ {
			r.eng.PublishTuple(r.node(), r.gen.Tuple())
			r.eng.RunUntil(r.eng.Sim().Now() + 8)
			r.eng.Run()
		}
		r.eng.Run()
		mgr.Stop()

		answers := answerMultisets(r.eng)
		if reference == nil {
			reference = answers // the static run comes first
		}
		results = append(results, result{
			k:        k,
			stats:    mgr.Stats,
			counters: r.eng.Counters,
			traffic:  r.eng.Net().Traffic.Total(),
			replTfc:  r.eng.Net().TaggedTraffic(overlay.TagRepl).Total(),
			comp:     compareToReference(reference, answers),
			nodes:    r.eng.Ring().Size(),
		})
	}

	durability := &metrics.Table{
		Title: "Fig R(a) Durability under a crash-heavy trace",
		Headers: []string{"factor", "crashes", "recall", "lost", "duplicated",
			"queries lost", "rewrites lost", "tuples lost", "agg lost", "promotions", "entries promoted"},
	}
	overhead := &metrics.Table{
		Title: "Fig R(b) Replication overhead",
		Headers: []string{"factor", "repl traffic", "repl share", "repl updates",
			"repl ops", "repair syncs", "total traffic"},
	}
	for _, res := range results {
		name := fmt.Sprintf("k=%d", res.k)
		if res.k == 0 {
			name = "static ref"
		}
		durability.AddRow(name,
			fmt.Sprintf("%d", res.stats.Crashes),
			fmt.Sprintf("%.4f", res.comp.Recall()),
			fmt.Sprintf("%d", res.comp.Lost),
			fmt.Sprintf("%d", res.comp.Duplicated),
			fmt.Sprintf("%d", res.counters.QueriesLost),
			fmt.Sprintf("%d", res.counters.RewritesLost),
			fmt.Sprintf("%d", res.counters.TuplesLost),
			fmt.Sprintf("%d", res.counters.AggStateLost),
			fmt.Sprintf("%d", res.counters.ReplPromotions),
			fmt.Sprintf("%d", res.counters.ReplEntriesPromoted),
		)
		share := 0.0
		if res.traffic > 0 {
			share = float64(res.replTfc) / float64(res.traffic)
		}
		overhead.AddRow(name,
			fmt.Sprintf("%d", res.replTfc),
			fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%d", res.counters.ReplUpdates),
			fmt.Sprintf("%d", res.counters.ReplOps),
			fmt.Sprintf("%d", res.counters.ReplSyncs),
			fmt.Sprintf("%d", res.traffic),
		)
	}
	return []*metrics.Table{durability, overhead}
}
