package experiments

import (
	"fmt"

	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/sim"
	"rjoin/internal/workload"
)

// lossyRates are the per-transmission drop probabilities FigLossy
// sweeps. Rate 0 runs on the reliable channels too, so the figure
// separates the cost of the ARQ machinery itself from the cost of the
// faults it masks.
var lossyRates = []float64{0, 0.05, 0.10, 0.20}

// lossyDrain runs the engine to reliable-delivery quiescence:
// foreground work first, then the clock advances to each outstanding
// retransmit deadline until no channel retains an undelivered payload.
func lossyDrain(eng *core.Engine) {
	for {
		eng.Run()
		t, ok := eng.Net().NextRetransmit()
		if !ok {
			return
		}
		eng.RunUntil(t)
	}
}

// FigLossy measures what end-to-end reliable delivery buys on an
// unreliable network and what it costs. One fixed workload — queries up
// front, then a tuple stream with a scheduled partition/heal cycle
// mid-stream — runs once per drop rate, always with duplication and
// delay spikes riding along and ReplicationFactor 2 so the partition's
// dead-owner reroutes land on replicas. A faults-off run is the
// completeness reference. Reported per rate: recall and duplicated
// answers against the reference (the exactly-once guarantee holds both
// at 1.0 and 0), the injected fault counts, and the overhead —
// retransmissions and acks as a share of application transmissions,
// traffic the reliable channels generate but the workload metrics
// deliberately exclude.
func FigLossy(p Params) []*metrics.Table {
	queries := p.scaled(200)
	tuples := p.scaled(600)

	type result struct {
		rate     float64
		nw       *overlay.Network
		comp     metrics.Completeness
		answers  int64
		messages int64
	}
	var results []result
	var reference map[string]map[string]int64 // query ID → row multiset

	for _, rate := range append([]float64{-1}, lossyRates...) {
		cfg := core.DefaultConfig()
		cfg.ReplicationFactor = 2
		netCfg := overlay.DefaultConfig()
		netCfg.Bounce = true
		if rate >= 0 {
			netCfg.Faults = &overlay.Faults{
				DropProb: rate, DupProb: 0.05, SpikeProb: 0.05, SpikeMax: 4,
			}
		}
		wcfg := workload.PaperConfig()
		wcfg.JoinArity = 2
		wcfg.Values = 20
		r := newRunNet(p, cfg, wcfg, netCfg)

		for i := 0; i < queries; i++ {
			if _, err := r.eng.SubmitQuery(r.node(), r.gen.Query()); err != nil {
				panic(err) // generator output is valid by construction
			}
		}
		lossyDrain(r.eng)

		if rate >= 0 {
			// One partition/heal cycle across the middle of the stream:
			// the identifier-ordered first quarter of the ring against
			// the rest. The stream below advances 4 ticks per tuple, so
			// the window covers roughly the second quarter of it.
			nodes := r.eng.Ring().Nodes()
			side := make(map[id.ID]bool, len(nodes)/4)
			for _, n := range nodes[:len(nodes)/4] {
				side[n.ID()] = true
			}
			start := r.eng.Sim().Now() + sim.Time(tuples)
			if err := r.eng.Net().AddPartition(overlay.Partition{
				Start: start, End: start + sim.Time(tuples), Side: side,
			}); err != nil {
				panic(err) // window and side are valid by construction
			}
		}
		for i := 0; i < tuples; i++ {
			r.eng.PublishTuple(r.node(), r.gen.Tuple())
			r.eng.RunUntil(r.eng.Sim().Now() + 4)
		}
		lossyDrain(r.eng)

		answers := answerMultisets(r.eng)
		if reference == nil {
			reference = answers // the faults-off run comes first
		}
		var delivered int64
		for _, rows := range answers {
			for _, c := range rows {
				delivered += c
			}
		}
		results = append(results, result{
			rate:     rate,
			nw:       r.eng.Net(),
			comp:     compareToReference(reference, answers),
			answers:  delivered,
			messages: r.eng.Net().MessagesSent,
		})
	}

	exact := &metrics.Table{
		Title: "Fig L(a) Exactness under message loss",
		Headers: []string{"drop rate", "recall", "duplicated", "answers",
			"dropped", "dup injected", "abandoned"},
	}
	overhead := &metrics.Table{
		Title: "Fig L(b) Reliable-delivery overhead",
		Headers: []string{"drop rate", "retransmits", "acks", "overhead",
			"app messages"},
	}
	for _, res := range results {
		name := fmt.Sprintf("%.0f%%", 100*res.rate)
		if res.rate < 0 {
			name = "faults off"
		}
		exact.AddRow(name,
			fmt.Sprintf("%.4f", res.comp.Recall()),
			fmt.Sprintf("%d", res.comp.Duplicated),
			fmt.Sprintf("%d", res.answers),
			fmt.Sprintf("%d", res.nw.Dropped),
			fmt.Sprintf("%d", res.nw.Duplicated),
			fmt.Sprintf("%d", res.nw.Abandoned),
		)
		share := 0.0
		if res.messages > 0 {
			share = float64(res.nw.Retransmits+res.nw.AckMessages) / float64(res.messages)
		}
		overhead.AddRow(name,
			fmt.Sprintf("%d", res.nw.Retransmits),
			fmt.Sprintf("%d", res.nw.AckMessages),
			fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%d", res.messages),
		)
	}
	return []*metrics.Table{exact, overhead}
}
