// Package experiments regenerates every figure of the paper's
// experimental analysis (Section 8). Each FigN function runs the
// corresponding experiment on the simulated overlay and returns tables
// holding the same rows/series the paper plots. The Params.Scale knob
// shrinks the workload proportionally (node count is kept, so load
// distributions remain comparable); shapes — who wins, by what rough
// factor, where curves bend — are preserved across scales.
//
// Default setup, as in the paper: N = 1000 Chord nodes, a schema of 10
// relations × 10 attributes with value domain 100, Zipf θ = 0.9, 4-way
// chain joins, 2·10⁴ continuous queries.
package experiments

import (
	"fmt"
	"math/rand"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/loadbalance"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/sim"
	"rjoin/internal/workload"
)

// Params sizes an experiment.
type Params struct {
	// Nodes is the overlay size (paper: 1000).
	Nodes int
	// Queries is the number of continuous queries inserted before the
	// tuple stream starts (paper: 20000), before scaling.
	Queries int
	// Seed drives all randomness.
	Seed int64
	// Scale in (0, 1] multiplies query and tuple counts.
	Scale float64
	// Workers >= 2 runs each experiment on the deterministic parallel
	// event engine with that many OS threads; 0/1 keeps the serial
	// engine. Runs whose engine configuration is incompatible with
	// parallel execution (StrategyWorst's cross-shard oracle) fall back
	// to serial.
	Workers int
}

// Default returns the paper's experimental setup at the given scale.
func Default(scale float64) Params {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return Params{Nodes: 1000, Queries: 20000, Seed: 1, Scale: scale}
}

func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// run is one configured network with its workload generator.
type run struct {
	eng *core.Engine
	gen *workload.Generator
	rng *rand.Rand
}

func newRun(p Params, cfg core.Config, wcfg workload.Config) *run {
	return newRunNet(p, cfg, wcfg, overlay.DefaultConfig())
}

// newRunNet is newRun with an explicit overlay configuration (the
// churn figure enables message bouncing).
func newRunNet(p Params, cfg core.Config, wcfg workload.Config, netCfg overlay.Config) *run {
	ring := chord.NewRing()
	idRng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < p.Nodes; i++ {
		for {
			if _, err := ring.Join(id.ID(idRng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	se := sim.NewEngine(p.Seed)
	if p.Workers > 1 && cfg.Strategy != core.StrategyWorst && netCfg.MinHopDelay >= 1 {
		se.SetWorkers(p.Workers)
	}
	nw := overlay.MustNetwork(ring, se, netCfg)
	eng := core.NewEngine(ring, se, nw, cfg)
	return &run{
		eng: eng,
		gen: workload.MustGenerator(wcfg, p.Seed),
		rng: rand.New(rand.NewSource(p.Seed + 1)),
	}
}

// node picks a pseudo-random node from the live membership (a snapshot
// would go stale under churn or identifier movement).
func (r *run) node() *chord.Node {
	nodes := r.eng.Ring().Nodes()
	return nodes[r.rng.Intn(len(nodes))]
}

// warmup publishes n tuples before the measured experiment begins and
// then resets all metrics. The continuous stream is assumed to be
// already flowing when queries arrive — the RIC machinery of Section 6
// explicitly predicts from "the last time window", which requires one
// to exist. Warmup tuples predate every query's insertion time, so they
// never contribute answers.
func (r *run) warmup(n int) {
	r.publish(n)
	r.eng.ResetMetrics()
}

func (r *run) submitQueries(n int, window query.WindowSpec) {
	for i := 0; i < n; i++ {
		q := r.gen.Query()
		q.Window = window
		if _, err := r.eng.SubmitQuery(r.node(), q); err != nil {
			panic(err) // generator output is valid by construction
		}
	}
	r.eng.Run()
}

func (r *run) publish(n int) {
	for i := 0; i < n; i++ {
		r.eng.PublishTuple(r.node(), r.gen.Tuple())
		r.eng.Run()
	}
}

// rankedSummary renders a ranked load distribution at fixed rank
// positions, the textual equivalent of the paper's log-log ranked
// plots.
var rankedFracs = []float64{0, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1}

func rankedHeader() []string {
	h := []string{"series"}
	for _, f := range rankedFracs {
		h = append(h, fmt.Sprintf("rank %d%%", int(f*100)))
	}
	return append(h, "participants")
}

func rankedRow(name string, l *metrics.Load) []string {
	ranked := l.Ranked()
	row := []string{name}
	for _, f := range rankedFracs {
		if len(ranked) == 0 {
			row = append(row, "0")
			continue
		}
		i := int(f * float64(len(ranked)-1))
		row = append(row, fmt.Sprintf("%d", ranked[i]))
	}
	return append(row, fmt.Sprintf("%d", l.Participants()))
}

// Fig2 — Effect of taking into account RIC information. Three placement
// strategies (Worst, Random, RJoin) over the same workload; per-node
// totals of traffic, QPL and SL after 50/100/200/400 tuples, with
// RJoin's RIC-request traffic reported separately.
func Fig2(p Params) []*metrics.Table {
	checkpoints := []int{
		p.scaled(50), p.scaled(100), p.scaled(200), p.scaled(400),
	}
	type snapshot struct{ traffic, ric, qpl, sl float64 }
	series := map[core.Strategy][]snapshot{}
	for _, strat := range []core.Strategy{core.StrategyWorst, core.StrategyRandom, core.StrategyRIC} {
		cfg := core.DefaultConfig()
		cfg.Strategy = strat
		r := newRun(p, cfg, workload.PaperConfig())
		r.warmup(p.scaled(400))
		r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})
		published := 0
		for _, cp := range checkpoints {
			r.publish(cp - published)
			published = cp
			series[strat] = append(series[strat], snapshot{
				traffic: r.eng.Net().Traffic.PerNode(p.Nodes),
				ric:     r.eng.Net().TaggedTraffic(core.TagRIC).PerNode(p.Nodes),
				qpl:     r.eng.QPL.PerNode(p.Nodes),
				sl:      r.eng.SL.PerNode(p.Nodes),
			})
		}
	}
	mk := func(title string, pick func(snapshot) float64, withRIC bool) *metrics.Table {
		t := &metrics.Table{
			Title:   title,
			Headers: []string{"# tuples", "Worst", "Random", "RJoin"},
		}
		if withRIC {
			t.Headers = append(t.Headers, "Request RIC")
		}
		for i, cp := range checkpoints {
			row := []string{
				fmt.Sprintf("%d", cp),
				fmt.Sprintf("%.2f", pick(series[core.StrategyWorst][i])),
				fmt.Sprintf("%.2f", pick(series[core.StrategyRandom][i])),
				fmt.Sprintf("%.2f", pick(series[core.StrategyRIC][i])),
			}
			if withRIC {
				row = append(row, fmt.Sprintf("%.2f", series[core.StrategyRIC][i].ric))
			}
			t.AddRow(row...)
		}
		return t
	}
	return []*metrics.Table{
		mk("Fig 2(a) Traffic cost: total messages per node", func(s snapshot) float64 { return s.traffic }, true),
		mk("Fig 2(b) Query processing load per node", func(s snapshot) float64 { return s.qpl }, false),
		mk("Fig 2(c) Storage load per node", func(s snapshot) float64 { return s.sl }, false),
	}
}

// Fig3 — Effect of increasing the number of incoming tuples: traffic
// per tuple (total and RIC share) plus ranked QPL/SL distributions at
// 40..2560 tuples.
func Fig3(p Params) []*metrics.Table {
	checkpoints := []int{
		p.scaled(40), p.scaled(80), p.scaled(160), p.scaled(320),
		p.scaled(640), p.scaled(1280), p.scaled(2560),
	}
	r := newRun(p, core.DefaultConfig(), workload.PaperConfig())
	r.warmup(p.scaled(400))
	r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})

	traffic := &metrics.Table{
		Title:   "Fig 3(a) Traffic cost per tuple",
		Headers: []string{"# tuples", "total hops/node/tuple", "request RIC/node/tuple"},
	}
	qpl := &metrics.Table{Title: "Fig 3(b) Query processing load distribution", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 3(c) Storage load distribution", Headers: rankedHeader()}

	preTuple := r.eng.Net().Traffic.Total()
	preRIC := r.eng.Net().TaggedTraffic(core.TagRIC).Total()
	published := 0
	for _, cp := range checkpoints {
		r.publish(cp - published)
		published = cp
		n := float64(p.Nodes) * float64(cp)
		traffic.AddRow(
			fmt.Sprintf("%d", cp),
			fmt.Sprintf("%.3f", float64(r.eng.Net().Traffic.Total()-preTuple)/n),
			fmt.Sprintf("%.3f", float64(r.eng.Net().TaggedTraffic(core.TagRIC).Total()-preRIC)/n),
		)
		qpl.AddRow(rankedRow(fmt.Sprintf("%d tuples", cp), r.eng.QPL)...)
		sl.AddRow(rankedRow(fmt.Sprintf("%d tuples", cp), r.eng.SL)...)
	}
	return []*metrics.Table{traffic, qpl, sl}
}

// Fig4 — Effect of increasing the number of indexed queries:
// 2k..32k queries, 1000 tuples each.
func Fig4(p Params) []*metrics.Table {
	counts := []int{
		p.scaled(2000), p.scaled(4000), p.scaled(8000),
		p.scaled(16000), p.scaled(32000),
	}
	tuples := p.scaled(1000)
	traffic := &metrics.Table{
		Title:   "Fig 4(a) Traffic cost per tuple",
		Headers: []string{"# queries", "total hops/node/tuple", "request RIC/node/tuple"},
	}
	qpl := &metrics.Table{Title: "Fig 4(b) Query processing load distribution", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 4(c) Storage load distribution", Headers: rankedHeader()}
	for _, nq := range counts {
		r := newRun(p, core.DefaultConfig(), workload.PaperConfig())
		r.warmup(p.scaled(400))
		r.submitQueries(nq, query.WindowSpec{})
		preTuple := r.eng.Net().Traffic.Total() // exclude query-indexing traffic
		preRIC := r.eng.Net().TaggedTraffic(core.TagRIC).Total()
		r.publish(tuples)
		n := float64(p.Nodes) * float64(tuples)
		traffic.AddRow(
			fmt.Sprintf("%d", nq),
			fmt.Sprintf("%.3f", float64(r.eng.Net().Traffic.Total()-preTuple)/n),
			fmt.Sprintf("%.3f", float64(r.eng.Net().TaggedTraffic(core.TagRIC).Total()-preRIC)/n),
		)
		qpl.AddRow(rankedRow(fmt.Sprintf("%d queries", nq), r.eng.QPL)...)
		sl.AddRow(rankedRow(fmt.Sprintf("%d queries", nq), r.eng.SL)...)
	}
	return []*metrics.Table{traffic, qpl, sl}
}

// Fig5 — Varying the skew of the data distribution: θ in
// {0.3, 0.5, 0.7, 0.9}, 1000 tuples.
func Fig5(p Params) []*metrics.Table {
	thetas := []float64{0.3, 0.5, 0.7, 0.9}
	tuples := p.scaled(1000)
	traffic := &metrics.Table{
		Title:   "Fig 5(a) Traffic cost per tuple",
		Headers: []string{"theta", "total hops/node/tuple", "request RIC/node/tuple"},
	}
	qpl := &metrics.Table{Title: "Fig 5(b) Query processing load distribution", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 5(c) Storage load distribution", Headers: rankedHeader()}
	for _, theta := range thetas {
		wcfg := workload.PaperConfig()
		wcfg.Theta = theta
		r := newRun(p, core.DefaultConfig(), wcfg)
		r.warmup(p.scaled(400))
		r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})
		preTuple := r.eng.Net().Traffic.Total()
		preRIC := r.eng.Net().TaggedTraffic(core.TagRIC).Total()
		r.publish(tuples)
		n := float64(p.Nodes) * float64(tuples)
		traffic.AddRow(
			fmt.Sprintf("%.1f", theta),
			fmt.Sprintf("%.3f", float64(r.eng.Net().Traffic.Total()-preTuple)/n),
			fmt.Sprintf("%.3f", float64(r.eng.Net().TaggedTraffic(core.TagRIC).Total()-preRIC)/n),
		)
		qpl.AddRow(rankedRow(fmt.Sprintf("theta=%.1f", theta), r.eng.QPL)...)
		sl.AddRow(rankedRow(fmt.Sprintf("theta=%.1f", theta), r.eng.SL)...)
	}
	return []*metrics.Table{traffic, qpl, sl}
}

// Fig6 — Effect of query complexity: 4-, 6- and 8-way joins, 1000
// tuples.
func Fig6(p Params) []*metrics.Table {
	arities := []int{4, 6, 8}
	tuples := p.scaled(1000)
	traffic := &metrics.Table{
		Title:   "Fig 6(a) Traffic cost per tuple",
		Headers: []string{"joins", "total hops/node/tuple", "request RIC/node/tuple"},
	}
	qpl := &metrics.Table{Title: "Fig 6(b) Query processing load distribution", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 6(c) Storage load distribution", Headers: rankedHeader()}
	for _, k := range arities {
		wcfg := workload.PaperConfig()
		wcfg.JoinArity = k
		r := newRun(p, core.DefaultConfig(), wcfg)
		r.warmup(p.scaled(400))
		r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})
		preTuple := r.eng.Net().Traffic.Total()
		preRIC := r.eng.Net().TaggedTraffic(core.TagRIC).Total()
		r.publish(tuples)
		n := float64(p.Nodes) * float64(tuples)
		traffic.AddRow(
			fmt.Sprintf("%d-way", k),
			fmt.Sprintf("%.3f", float64(r.eng.Net().Traffic.Total()-preTuple)/n),
			fmt.Sprintf("%.3f", float64(r.eng.Net().TaggedTraffic(core.TagRIC).Total()-preRIC)/n),
		)
		qpl.AddRow(rankedRow(fmt.Sprintf("%d-way joins", k), r.eng.QPL)...)
		sl.AddRow(rankedRow(fmt.Sprintf("%d-way joins", k), r.eng.SL)...)
	}
	return []*metrics.Table{traffic, qpl, sl}
}

// windowSizes are the Figure 7/8 sliding-window sizes in tuples.
func windowSizes(p Params) []int {
	return []int{p.scaled(50), p.scaled(100), p.scaled(200), p.scaled(400), p.scaled(1000)}
}

// Fig7And8 runs the sliding-window experiment once and produces both
// figures: Fig 7's per-window traffic and ranked load distributions,
// and Fig 8's cumulative QPL/SL series over tuple arrivals.
func Fig7And8(p Params) (fig7, fig8 []*metrics.Table) {
	tuples := p.scaled(1000)
	steps := 10
	stepSize := tuples / steps
	if stepSize == 0 {
		stepSize = 1
	}

	traffic := &metrics.Table{
		Title:   "Fig 7(a) Traffic cost per tuple vs window size",
		Headers: []string{"window (tuples)", "total hops/node/tuple", "request RIC/node/tuple"},
	}
	qpl := &metrics.Table{Title: "Fig 7(b) Query processing load distribution", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 7(c) Storage load distribution", Headers: rankedHeader()}

	sizes := windowSizes(p)
	cumQPL := &metrics.Table{Title: "Fig 8(a) Cumulative query processing load vs tuples"}
	cumSL := &metrics.Table{Title: "Fig 8(b) Cumulative storage load vs tuples"}
	cumQPL.Headers = []string{"# tuples"}
	cumSL.Headers = []string{"# tuples"}
	for _, w := range sizes {
		cumQPL.Headers = append(cumQPL.Headers, fmt.Sprintf("W=%d", w))
		cumSL.Headers = append(cumSL.Headers, fmt.Sprintf("W=%d", w))
	}
	qplSeries := make([][]int64, steps)
	slSeries := make([][]int64, steps)

	for wi, w := range sizes {
		cfg := core.DefaultConfig()
		cfg.TupleGC = true
		cfg.MaxWindowHint = int64(sizes[len(sizes)-1])
		r := newRun(p, cfg, workload.PaperConfig())
		r.warmup(p.scaled(400))
		r.submitQueries(p.scaled(p.Queries),
			query.WindowSpec{Kind: query.WindowTuples, Size: int64(w)})
		preTuple := r.eng.Net().Traffic.Total()
		preRIC := r.eng.Net().TaggedTraffic(core.TagRIC).Total()
		for s := 0; s < steps; s++ {
			r.publish(stepSize)
			if qplSeries[s] == nil {
				qplSeries[s] = make([]int64, len(sizes))
				slSeries[s] = make([]int64, len(sizes))
			}
			qplSeries[s][wi] = r.eng.QPL.Total()
			slSeries[s][wi] = r.eng.SL.Total()
		}
		n := float64(p.Nodes) * float64(stepSize*steps)
		traffic.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.3f", float64(r.eng.Net().Traffic.Total()-preTuple)/n),
			fmt.Sprintf("%.3f", float64(r.eng.Net().TaggedTraffic(core.TagRIC).Total()-preRIC)/n),
		)
		qpl.AddRow(rankedRow(fmt.Sprintf("W=%d tuples", w), r.eng.QPL)...)
		sl.AddRow(rankedRow(fmt.Sprintf("W=%d tuples", w), r.eng.SL)...)
	}
	for s := 0; s < steps; s++ {
		rowQ := []string{fmt.Sprintf("%d", (s+1)*stepSize)}
		rowS := []string{fmt.Sprintf("%d", (s+1)*stepSize)}
		for wi := range sizes {
			rowQ = append(rowQ, fmt.Sprintf("%d", qplSeries[s][wi]))
			rowS = append(rowS, fmt.Sprintf("%d", slSeries[s][wi]))
		}
		cumQPL.AddRow(rowQ...)
		cumSL.AddRow(rowS...)
	}
	return []*metrics.Table{traffic, qpl, sl}, []*metrics.Table{cumQPL, cumSL}
}

// Fig7 returns only the Figure 7 tables.
func Fig7(p Params) []*metrics.Table {
	t, _ := Fig7And8(p)
	return t
}

// Fig8 returns only the Figure 8 tables.
func Fig8(p Params) []*metrics.Table {
	_, t := Fig7And8(p)
	return t
}

// Fig9 — Effect of identifier movement: ranked QPL and SL distributions
// with and without the lower-level load balancer.
func Fig9(p Params) []*metrics.Table {
	tuples := p.scaled(1000)
	qpl := &metrics.Table{Title: "Fig 9(a) QPL distribution (id movement)", Headers: rankedHeader()}
	sl := &metrics.Table{Title: "Fig 9(b) SL distribution (id movement)", Headers: rankedHeader()}
	for _, withBalance := range []bool{false, true} {
		r := newRun(p, core.DefaultConfig(), workload.PaperConfig())
		r.warmup(p.scaled(400))
		r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})
		bal := loadbalance.New()
		if withBalance {
			bal.Rebalance(r.eng) // balance the indexed queries first
		}
		step := tuples / 10
		if step == 0 {
			step = 1
		}
		published := 0
		for published < tuples {
			n := step
			if published+n > tuples {
				n = tuples - published
			}
			r.publish(n)
			published += n
			if withBalance {
				bal.Rebalance(r.eng)
			}
		}
		name := "Without"
		if withBalance {
			name = "With"
		}
		qpl.AddRow(rankedRow(name, r.eng.QPL)...)
		sl.AddRow(rankedRow(name, r.eng.SL)...)
	}
	return []*metrics.Table{qpl, sl}
}

// All runs every figure and returns the tables keyed by figure id, in
// paper order. The churn ("churn") and recovery ("recovery") figures
// are this reproduction's own extensions: the paper measures a stable
// overlay only.
func All(p Params) map[string][]*metrics.Table {
	f7, f8 := Fig7And8(p)
	return map[string][]*metrics.Table{
		"2":        Fig2(p),
		"3":        Fig3(p),
		"4":        Fig4(p),
		"5":        Fig5(p),
		"6":        Fig6(p),
		"7":        f7,
		"8":        f8,
		"9":        Fig9(p),
		"churn":    FigChurn(p),
		"recovery": FigRecovery(p),
		"lossy":    FigLossy(p),
		"sharing":  FigSharing(p),
	}
}
