package experiments

import (
	"fmt"

	"rjoin/internal/agg"
	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/workload"
)

// FigAgg is this reproduction's in-network aggregation figure: the
// same GROUP BY workload runs once with in-network aggregation
// (completed rows route to per-group aggregator keys on the DHT, which
// coalesce them into group updates) and once with subscriber-side
// aggregation (every raw row ships to the subscriber, which folds it
// locally). Both runs end with bit-identical aggregate views — the
// figure reports what each paid for them: total traffic, the
// aggregation share, rows folded vs group updates emitted, and above
// all the subscriber-bound message load, which in-network aggregation
// compresses from one message per raw answer row to one per touched
// (group, epoch).
func FigAgg(p Params) []*metrics.Table {
	queries := p.scaled(120)
	tuples := p.scaled(2400)

	// 2-way joins over a small value domain: a thick answer stream whose
	// group structure (first selected attribute) is coarse enough that
	// coalescing has something to coalesce — the regime aggregation
	// workloads live in.
	wcfg := workload.PaperConfig()
	wcfg.JoinArity = 2
	wcfg.Values = 20

	type result struct {
		name     string
		stats    core.Counters
		traffic  int64
		aggTfc   int64
		subBound int64 // messages the subscriber had to absorb
		views    map[string][]agg.ViewRow
	}
	var results []result

	for _, mode := range []struct {
		name           string
		subscriberSide bool
	}{
		{"in-network", false},
		{"subscriber-side", true},
	} {
		cfg := core.DefaultConfig()
		cfg.SubscriberSideAgg = mode.subscriberSide
		r := newRun(p, cfg, wcfg)
		var qids []string
		for i := 0; i < queries; i++ {
			qid, err := r.eng.SubmitQuery(r.node(), r.gen.GroupQuery())
			if err != nil {
				panic(err) // generator output is valid by construction
			}
			qids = append(qids, qid)
		}
		r.eng.Run()
		for i := 0; i < tuples; i++ {
			r.eng.PublishTuple(r.node(), r.gen.Tuple())
			if i%32 == 31 {
				r.eng.Run()
			}
		}
		r.eng.Run()

		views := make(map[string][]agg.ViewRow, len(qids))
		for _, qid := range qids {
			views[qid] = r.eng.AggRows(qid)
		}
		subBound := r.eng.Counters.AggUpdates
		if mode.subscriberSide {
			subBound = r.eng.Counters.AggPartials
		}
		results = append(results, result{
			name:     mode.name,
			stats:    r.eng.Counters,
			traffic:  r.eng.Net().Traffic.Total(),
			aggTfc:   r.eng.Net().TaggedTraffic(core.TagAgg).Total(),
			subBound: subBound,
			views:    views,
		})
	}

	identical := viewsEqual(results[0].views, results[1].views)

	load := &metrics.Table{
		Title: "Fig A In-network vs subscriber-side aggregation message load",
		Headers: []string{"mode", "rows folded", "group updates", "subscriber-bound msgs",
			"agg traffic", "total traffic", "rewrites"},
	}
	for _, res := range results {
		load.AddRow(res.name,
			fmt.Sprintf("%d", res.stats.AggPartials),
			fmt.Sprintf("%d", res.stats.AggUpdates),
			fmt.Sprintf("%d", res.subBound),
			fmt.Sprintf("%d", res.aggTfc),
			fmt.Sprintf("%d", res.traffic),
			fmt.Sprintf("%d", res.stats.RewritesCreated),
		)
	}
	check := &metrics.Table{
		Title:   "Fig A(b) Aggregate view equivalence",
		Headers: []string{"queries", "view rows", "views identical"},
	}
	rows := 0
	for _, v := range results[0].views {
		rows += len(v)
	}
	check.AddRow(
		fmt.Sprintf("%d", queries),
		fmt.Sprintf("%d", rows),
		fmt.Sprintf("%v", identical),
	)
	return []*metrics.Table{load, check}
}

// viewsEqual compares two per-query aggregate views row by row.
func viewsEqual(a, b map[string][]agg.ViewRow) bool {
	if len(a) != len(b) {
		return false
	}
	for qid, av := range a {
		bv, ok := b[qid]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i].Group != bv[i].Group || av[i].Epoch != bv[i].Epoch {
				return false
			}
			if len(av[i].Row) != len(bv[i].Row) {
				return false
			}
			for j := range av[i].Row {
				if !av[i].Row[j].Equal(bv[i].Row[j]) {
					return false
				}
			}
		}
	}
	return true
}
