package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a very small parameter set so every figure runs in test
// time; shapes at this scale are noisy, so shape assertions use
// comfortable margins.
func tiny() Params {
	return Params{Nodes: 100, Queries: 4000, Seed: 1, Scale: 0.15}
}

func cell(tab rowser, row, col int) float64 {
	v, err := strconv.ParseFloat(tab.cellAt(row, col), 64)
	if err != nil {
		panic(err)
	}
	return v
}

type rowser interface{ cellAt(r, c int) string }

type tableWrap struct{ rows [][]string }

func (t tableWrap) cellAt(r, c int) string { return t.rows[r][c] }

func TestFig2ShapeWorstAboveRJoin(t *testing.T) {
	tabs := Fig2(tiny())
	if len(tabs) != 3 {
		t.Fatalf("got %d tables", len(tabs))
	}
	traffic := tableWrap{tabs[0].Rows}
	last := len(tabs[0].Rows) - 1
	worst := cell(traffic, last, 1)
	rjoin := cell(traffic, last, 3)
	if worst <= rjoin {
		t.Fatalf("Fig2 shape broken: Worst traffic %.2f <= RJoin %.2f", worst, rjoin)
	}
	qpl := tableWrap{tabs[1].Rows}
	if cell(qpl, last, 1) <= cell(qpl, last, 3) {
		t.Fatalf("Fig2 shape broken: Worst QPL not above RJoin")
	}
}

func TestFig3TrafficGrowsWithTuples(t *testing.T) {
	tabs := Fig3(tiny())
	traffic := tabs[0]
	if len(traffic.Rows) < 3 {
		t.Fatalf("too few checkpoints: %d", len(traffic.Rows))
	}
	// Participants grow (or at least do not shrink) as tuples arrive.
	qpl := tabs[1]
	firstParts, _ := strconv.Atoi(qpl.Rows[0][len(qpl.Rows[0])-1])
	lastParts, _ := strconv.Atoi(qpl.Rows[len(qpl.Rows)-1][len(qpl.Rows[0])-1])
	if lastParts < firstParts {
		t.Fatalf("participants shrank: %d -> %d", firstParts, lastParts)
	}
}

func TestFig4MoreQueriesMoreLoad(t *testing.T) {
	tabs := Fig4(tiny())
	qpl := tabs[1]
	first := qpl.Rows[0]
	last := qpl.Rows[len(qpl.Rows)-1]
	// Max-rank load (rank 0%) grows with query count.
	f, _ := strconv.ParseFloat(first[1], 64)
	l, _ := strconv.ParseFloat(last[1], 64)
	if l < f {
		t.Fatalf("Fig4 shape broken: max QPL %f with 16x queries below %f", l, f)
	}
}

func TestFig5SkewIncreasesLoad(t *testing.T) {
	tabs := Fig5(tiny())
	qpl := tabs[1]
	lo, _ := strconv.ParseFloat(qpl.Rows[0][1], 64)               // theta=0.3 max
	hi, _ := strconv.ParseFloat(qpl.Rows[len(qpl.Rows)-1][1], 64) // theta=0.9 max
	if hi < lo {
		t.Fatalf("Fig5 shape broken: max load under theta=0.9 (%f) below theta=0.3 (%f)", hi, lo)
	}
}

func TestFig6ComplexityIncreasesTraffic(t *testing.T) {
	tabs := Fig6(tiny())
	traffic := tableWrap{tabs[0].Rows}
	fourWay := cell(traffic, 0, 1)
	eightWay := cell(traffic, 2, 1)
	if eightWay < fourWay {
		t.Fatalf("Fig6 shape broken: 8-way traffic %.3f below 4-way %.3f", eightWay, fourWay)
	}
}

func TestFig7And8WindowMonotonicity(t *testing.T) {
	f7, f8 := Fig7And8(tiny())
	// Fig 8: cumulative QPL at the end grows with window size (more
	// combinations to consider).
	cum := f8[0]
	lastRow := cum.Rows[len(cum.Rows)-1]
	smallest, _ := strconv.ParseFloat(lastRow[1], 64)
	largest, _ := strconv.ParseFloat(lastRow[len(lastRow)-1], 64)
	if largest < smallest {
		t.Fatalf("Fig8 shape broken: cumulative QPL W=max (%f) below W=min (%f)", largest, smallest)
	}
	if len(f7) != 3 {
		t.Fatalf("Fig7 table count %d", len(f7))
	}
}

func TestFig9BalancerShavesHead(t *testing.T) {
	tabs := Fig9(tiny())
	qpl := tabs[0]
	if len(qpl.Rows) != 2 {
		t.Fatalf("rows %d", len(qpl.Rows))
	}
	without, _ := strconv.ParseFloat(qpl.Rows[0][1], 64)
	with, _ := strconv.ParseFloat(qpl.Rows[1][1], 64)
	if with > without*1.25 {
		t.Fatalf("Fig9 shape broken: balanced max QPL %f well above unbalanced %f", with, without)
	}
}

// TestFigChurnShapes: graceful-only churn delivers the reference
// exactly; the crash scenario's losses are counted, not silent.
func TestFigChurnShapes(t *testing.T) {
	p := tiny()
	tabs := FigChurn(p)
	if len(tabs) != 3 {
		t.Fatalf("FigChurn returned %d tables", len(tabs))
	}
	events, comp := tableWrap{tabs[0].Rows}, tableWrap{tabs[1].Rows}
	// Row order: static, leave, join+leave, crash.
	if cell(events, 0, 1) != 0 || cell(events, 0, 2) != 0 || cell(events, 0, 3) != 0 {
		t.Fatal("static scenario churned")
	}
	if cell(events, 1, 2) == 0 {
		t.Fatal("leave scenario performed no leaves")
	}
	if cell(events, 1, 5) == 0 {
		t.Fatal("leaves moved no handover chunks")
	}
	if cell(events, 3, 3) == 0 {
		t.Fatal("crash scenario performed no crashes")
	}
	for row, name := range []string{"static", "leave", "join+leave"} {
		if lost, dup := cell(comp, row, 3), cell(comp, row, 4); lost != 0 || dup != 0 {
			t.Errorf("%s: lost=%v duplicated=%v, want exactly-once", name, lost, dup)
		}
	}
	if cell(comp, 3, 1) == 0 {
		t.Fatal("reference expected no answers; workload too weak")
	}
}

// TestFigRecoveryShapes is the durability acceptance criterion: under
// the crash-heavy trace, the unreplicated run (k=1) loses answers while
// every replicated factor (k >= 2) reports completeness recall 1.0 with
// RewritesLost == TuplesLost == AggStateLost == 0 — and pays a visible,
// factor-proportional replication overhead for it.
func TestFigRecoveryShapes(t *testing.T) {
	p := tiny()
	tabs := FigRecovery(p)
	if len(tabs) != 2 {
		t.Fatalf("FigRecovery returned %d tables", len(tabs))
	}
	dur, over := tableWrap{tabs[0].Rows}, tableWrap{tabs[1].Rows}
	// Row order: static ref, k=1, k=2, k=3.
	if cell(dur, 0, 1) != 0 {
		t.Fatal("static reference crashed nodes")
	}
	if cell(dur, 1, 1) == 0 {
		t.Fatal("crash trace performed no crashes")
	}
	if cell(dur, 1, 2) >= 1 || cell(dur, 1, 3) == 0 {
		t.Fatalf("k=1 should lose answers under crashes: recall %v, lost %v",
			cell(dur, 1, 2), cell(dur, 1, 3))
	}
	for _, row := range []int{2, 3} {
		if r := cell(dur, row, 2); r != 1 {
			t.Errorf("row %d: replicated recall %v, want 1.0", row, r)
		}
		if lost, dup := cell(dur, row, 3), cell(dur, row, 4); lost != 0 || dup != 0 {
			t.Errorf("row %d: lost=%v duplicated=%v, want exactly-once", row, lost, dup)
		}
		for col := 5; col <= 8; col++ { // queries/rewrites/tuples/agg lost
			if v := cell(dur, row, col); v != 0 {
				t.Errorf("row %d col %d: counted loss %v under replication", row, col, v)
			}
		}
		if cell(dur, row, 9) == 0 {
			t.Errorf("row %d: crashes promoted no mirrors", row)
		}
	}
	if cell(over, 1, 1) != 0 {
		t.Fatal("k=1 paid replication traffic")
	}
	if k2, k3 := cell(over, 2, 1), cell(over, 3, 1); k2 == 0 || k3 <= k2 {
		t.Fatalf("replication overhead not factor-proportional: k=2 %v, k=3 %v", k2, k3)
	}
}

// TestFigLossyShapes is the unreliable-network acceptance criterion:
// at every swept drop rate — including 10% with a partition/heal cycle
// riding along — the answer multiset matches the faults-off reference
// exactly (recall 1.0, zero duplicates, zero abandoned messages), the
// injected-fault counters grow with the rate, and the retransmit/ack
// overhead is visible only on the faulty rows.
func TestFigLossyShapes(t *testing.T) {
	p := tiny()
	tabs := FigLossy(p)
	if len(tabs) != 2 {
		t.Fatalf("FigLossy returned %d tables", len(tabs))
	}
	exact, over := tableWrap{tabs[0].Rows}, tableWrap{tabs[1].Rows}
	// Row order: faults off, then drop rates 0%, 5%, 10%, 20%.
	if len(tabs[0].Rows) != 1+len(lossyRates) {
		t.Fatalf("exactness table has %d rows", len(tabs[0].Rows))
	}
	if cell(exact, 0, 4) != 0 || cell(over, 0, 1) != 0 || cell(over, 0, 2) != 0 {
		t.Fatal("faults-off reference paid fault or transport counters")
	}
	for row := 1; row <= len(lossyRates); row++ {
		if r := cell(exact, row, 1); r != 1 {
			t.Errorf("row %d: recall %v under loss, want 1.0", row, r)
		}
		if dup := cell(exact, row, 2); dup != 0 {
			t.Errorf("row %d: %v duplicated answers leaked through dedup", row, dup)
		}
		if cell(exact, row, 4) == 0 {
			t.Errorf("row %d: partition window dropped nothing", row)
		}
		if ab := cell(exact, row, 6); ab != 0 {
			t.Errorf("row %d: %v messages abandoned", row, ab)
		}
		if cell(over, row, 1) == 0 || cell(over, row, 2) == 0 {
			t.Errorf("row %d: reliable channels idle under loss", row)
		}
	}
	// The drop counter grows with the swept rate: 20% >> 5%.
	if lo, hi := cell(exact, 2, 4), cell(exact, 4, 4); hi <= lo {
		t.Fatalf("dropped count not increasing with rate: 5%% %v, 20%% %v", lo, hi)
	}
}

// TestFigLatencyShapes: the observability figure must report a real
// latency distribution (every answer observed, non-degenerate
// quantiles), rate series that cover both scopes, and tag columns that
// include the untagged application traffic.
func TestFigLatencyShapes(t *testing.T) {
	p := tiny()
	tabs, tr, om := FigLatencyObs(p)
	if len(tabs) != 4 {
		t.Fatalf("FigLatencyObs returned %d tables", len(tabs))
	}
	hist, sum, tags, nodes := tabs[0], tabs[1], tabs[2], tabs[3]
	if len(hist.Rows) == 0 {
		t.Fatal("latency histogram is empty: workload produced no answers")
	}
	// Cumulative percentage ends at 100.
	lastCum, _ := strconv.ParseFloat(hist.Rows[len(hist.Rows)-1][2], 64)
	if lastCum < 99.9 || lastCum > 100.1 {
		t.Fatalf("cumulative %% ends at %v, want 100", lastCum)
	}
	// Summary row order: latency, rewrite depth, hop count. All three
	// must have observations with p50 <= p99 (quantiles are bucket upper
	// bounds, so p99 may exceed the exact max) and min <= max.
	for _, row := range sum.Rows {
		w := tableWrap{[][]string{row}}
		if cell(w, 0, 1) == 0 {
			t.Fatalf("summary %q has no observations", row[0])
		}
		if p50, p99 := cell(w, 0, 3), cell(w, 0, 4); p50 > p99 {
			t.Fatalf("summary %q quantiles out of order: %v", row[0], row)
		}
		if min, max := cell(w, 0, 2), cell(w, 0, 5); min > max {
			t.Fatalf("summary %q min above max: %v", row[0], row)
		}
	}
	if len(sum.Rows) != 3 {
		t.Fatalf("summary rows %d", len(sum.Rows))
	}
	// The tag pivot includes the untagged application lane and at least
	// one window; the node table's busiest >= median on every row.
	foundApp := false
	for _, h := range tags.Headers {
		if h == "app" {
			foundApp = true
		}
	}
	if !foundApp || len(tags.Rows) == 0 {
		t.Fatalf("tag rate table degenerate: headers %v, %d rows", tags.Headers, len(tags.Rows))
	}
	for _, row := range nodes.Rows {
		w := tableWrap{[][]string{row}}
		if cell(w, 0, 2) < cell(w, 0, 3) {
			t.Fatalf("busiest below median: %v", row)
		}
	}
	// The artifacts behind the tables are live: the trace saw events and
	// nothing was truncated, and the metrics registry drains samples.
	if len(tr.Events()) == 0 || tr.Dropped() != 0 {
		t.Fatalf("trace degenerate: %d events, %d dropped", len(tr.Events()), tr.Dropped())
	}
	if len(om.Samples()) == 0 {
		t.Fatal("metrics registry drained no samples")
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("All() runs every experiment")
	}
	p := tiny()
	p.Queries = 500
	all := All(p)
	for _, figID := range []string{"2", "3", "4", "5", "6", "7", "8", "9", "churn", "recovery", "lossy"} {
		tabs, ok := all[figID]
		if !ok || len(tabs) == 0 {
			t.Fatalf("figure %s missing", figID)
		}
		for _, tab := range tabs {
			if !strings.Contains(tab.Title, "Fig") {
				t.Fatalf("untitled table in figure %s", figID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("empty table %q", tab.Title)
			}
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := Default(0.5)
	if p.Nodes != 1000 || p.Queries != 20000 || p.Scale != 0.5 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if Default(-1).Scale != 1 || Default(2).Scale != 1 {
		t.Fatal("scale clamping wrong")
	}
	if p.scaled(100) != 50 {
		t.Fatalf("scaled(100) = %d", p.scaled(100))
	}
	if (Params{Scale: 0.001}).scaled(100) != 1 {
		t.Fatal("scaled floor broken")
	}
}

// TestFigSharingShapes is the multi-query sharing acceptance
// criterion: at 90% duplicates the shared run stores at least 3x less
// state and performs at least 3x fewer rewriting steps per query than
// the no-sharing ablation, and every subscriber's answer bag is
// certified exact against the reference evaluator in every scenario —
// including the churn + ReplicationFactor 2 row.
func TestFigSharingShapes(t *testing.T) {
	p := tiny()
	tabs := FigSharing(p)
	if len(tabs) != 2 {
		t.Fatalf("FigSharing returned %d tables", len(tabs))
	}
	cost, exact := tableWrap{tabs[0].Rows}, tableWrap{tabs[1].Rows}
	if len(tabs[0].Rows) != len(sharingDupRatios) {
		t.Fatalf("cost table has %d rows", len(tabs[0].Rows))
	}
	reduction := func(row, col int) float64 {
		s := strings.TrimSuffix(tabs[0].Rows[row][col], "x")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparsable reduction cell %q", tabs[0].Rows[row][col])
		}
		return v
	}
	last := len(tabs[0].Rows) - 1 // the 90% duplicate row
	if got := reduction(last, 5); got < 3 {
		t.Errorf("state reduction at 90%% duplicates %.2fx, want >= 3x", got)
	}
	if got := reduction(last, 8); got < 3 {
		t.Errorf("rewrite reduction at 90%% duplicates %.2fx, want >= 3x", got)
	}
	// Classes collapse as the duplicate ratio grows.
	if cell(cost, 0, 2) <= cell(cost, last, 2) {
		t.Errorf("classes did not shrink with duplicates: %v -> %v",
			cell(cost, 0, 2), cell(cost, last, 2))
	}
	// Every scenario — the three ratios plus churn+rf2 — certifies
	// every subscriber exact.
	if len(tabs[1].Rows) != len(sharingDupRatios)+1 {
		t.Fatalf("exactness table has %d rows", len(tabs[1].Rows))
	}
	for row := range tabs[1].Rows {
		subs, ex := cell(exact, row, 1), cell(exact, row, 2)
		if subs == 0 || ex != subs {
			t.Errorf("row %d (%s): %v/%v subscribers exact",
				row, tabs[1].Rows[row][0], ex, subs)
		}
	}
}

// TestFigExplainShapes: the introspection figure must profile every
// query it submits, deliver answers, report a coherent per-placement
// table for the busiest query (arrival ranks a permutation of 1..n,
// every static clause present) and a fleet summary whose lineage cost
// reflects real provenance (>= 2 base tuples per 2-way-join answer).
func TestFigExplainShapes(t *testing.T) {
	p := tiny()
	tabs := FigExplain(p)
	if len(tabs) != 2 {
		t.Fatalf("FigExplain returned %d tables", len(tabs))
	}
	ta, tb := tableWrap{tabs[0].Rows}, tableWrap{tabs[1].Rows}
	if len(tabs[0].Rows) == 0 {
		t.Fatal("per-placement table is empty")
	}
	seen := map[float64]bool{}
	static := 0
	for row := range tabs[0].Rows {
		rank := cell(ta, row, 3)
		if rank < 1 || rank > float64(len(tabs[0].Rows)) || seen[rank] {
			t.Errorf("row %d: arrival rank %v out of range or duplicated", row, rank)
		}
		seen[rank] = true
		if tabs[0].Rows[row][2] != "runtime" {
			static++
		}
		if sel := cell(ta, row, 8); sel < -1 {
			t.Errorf("row %d: selectivity %v below -1", row, sel)
		}
	}
	if static < 2 {
		t.Errorf("busiest query shows %d static placements, want >= 2 (2-way join)", static)
	}
	if len(tabs[1].Rows) != 8 {
		t.Fatalf("summary table has %d rows", len(tabs[1].Rows))
	}
	profiled, answered := cell(tb, 0, 1), cell(tb, 1, 1)
	answers, hitRate := cell(tb, 2, 1), cell(tb, 5, 1)
	steps := cell(tb, 7, 1)
	if profiled != float64(p.scaled(p.Queries)) {
		t.Errorf("profiled %v queries, submitted %d", profiled, p.scaled(p.Queries))
	}
	if answered == 0 || answers == 0 {
		t.Fatalf("no answers delivered (answered=%v answers=%v)", answered, answers)
	}
	if hitRate < 0 || hitRate > 1 {
		t.Errorf("candidate-table hit rate %v outside [0,1]", hitRate)
	}
	if steps < 2 {
		t.Errorf("lineage steps per answer %v, want >= 2 for 2-way joins", steps)
	}
}
