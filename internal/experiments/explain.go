package experiments

import (
	"fmt"
	"sort"

	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/obs/profile"
	"rjoin/internal/query"
	"rjoin/internal/workload"
)

// FigExplain is this reproduction's introspection figure: the placement
// profiler and answer provenance turned on over a skewed 2-way-join
// workload, reported through Engine.Explain instead of the aggregate
// load counters. Table (a) is the EXPLAIN ANALYZE of one representative
// query — the one with the most answers — with each placement's
// observed arrival count, selectivity and rank by arrivals next to its
// static clause position: the gap between clause order and arrival rank
// is exactly the information RIC placement exploits, now visible per
// query rather than only in fleet totals. Table (b) summarizes
// introspection across the whole fleet: how many placements the
// pipelines occupy (static vs runtime-discovered), candidate-table hit
// rate, live state bytes, and the provenance cost per delivered answer
// (lineage steps = base tuples joined + rewrite hops taken).
func FigExplain(p Params) []*metrics.Table {
	prof := profile.New(0)
	cfg := core.DefaultConfig()
	cfg.Profile = prof
	cfg.Provenance = true

	wcfg := workload.PaperConfig()
	wcfg.JoinArity = 2
	wcfg.Values = 20 // small domain: value-level keys repeat, answers flow

	r := newRun(p, cfg, wcfg)
	r.warmup(p.scaled(400))
	var qids []string
	for i := 0; i < p.scaled(p.Queries); i++ {
		q := r.gen.Query()
		q.Window = query.WindowSpec{}
		qid, err := r.eng.SubmitQuery(r.node(), q)
		if err != nil {
			panic(err) // generator output is valid by construction
		}
		qids = append(qids, qid)
	}
	r.eng.Run()
	r.publish(p.scaled(1000))

	reports := make([]*profile.Report, len(qids))
	rep := 0 // representative: most answers, submission order breaking ties
	for i, qid := range qids {
		rp, err := r.eng.Explain(qid)
		if err != nil {
			panic(err)
		}
		reports[i] = rp
		if rp.Answers > reports[rep].Answers {
			rep = i
		}
	}

	// (a) Per-placement profile of the representative query, with each
	// placement's rank by observed arrivals (1 = hottest) next to its
	// static clause position.
	rr := reports[rep]
	byArrivals := make([]int, len(rr.Placements))
	for i := range byArrivals {
		byArrivals[i] = i
	}
	sort.SliceStable(byArrivals, func(a, b int) bool {
		return rr.Placements[byArrivals[a]].Arrivals > rr.Placements[byArrivals[b]].Arrivals
	})
	rank := make([]int, len(rr.Placements))
	for pos, i := range byArrivals {
		rank[i] = pos + 1
	}
	ta := &metrics.Table{
		Title: fmt.Sprintf("Fig E(a) EXPLAIN ANALYZE of the busiest query (%s: %d answers)",
			rr.Query, rr.Answers),
		Headers: []string{"placement", "level", "clause", "arrival rank", "arrivals", "evals", "rewrites", "completions", "selectivity"},
	}
	for i, pl := range rr.Placements {
		clause := fmt.Sprintf("%d", pl.Clause)
		if pl.Clause < 0 {
			clause = "runtime"
		}
		ta.AddRow(pl.Key, pl.Level, clause, fmt.Sprintf("%d", rank[i]),
			fmt.Sprintf("%d", pl.Arrivals), fmt.Sprintf("%d", pl.Evals),
			fmt.Sprintf("%d", pl.Rewrites), fmt.Sprintf("%d", pl.Completions),
			fmt.Sprintf("%.4f", pl.Selectivity()))
	}

	// (b) Fleet-wide introspection summary.
	var static, runtime, ctHits, ctMisses, stateBytes int64
	var answers, lineageSteps, answered int64
	for i, rp := range reports {
		for _, pl := range rp.Placements {
			if pl.Clause >= 0 {
				static++
			} else {
				runtime++
			}
			ctHits += pl.CTHits
			ctMisses += pl.CTMisses
			stateBytes += pl.StateBytes
		}
		answers += rp.Answers
		if rp.Answers > 0 {
			answered++
		}
		for _, lin := range r.eng.AnswerLineages(qids[i]) {
			lineageSteps += int64(len(lin))
		}
	}
	ctRate, stepsPer := 0.0, 0.0
	if ctHits+ctMisses > 0 {
		ctRate = float64(ctHits) / float64(ctHits+ctMisses)
	}
	if answers > 0 {
		stepsPer = float64(lineageSteps) / float64(answers)
	}
	tb := &metrics.Table{
		Title:   "Fig E(b) Fleet introspection summary",
		Headers: []string{"measure", "value"},
	}
	tb.AddRow("queries profiled", fmt.Sprintf("%d", len(qids)))
	tb.AddRow("queries with answers", fmt.Sprintf("%d", answered))
	tb.AddRow("answers delivered", fmt.Sprintf("%d", answers))
	tb.AddRow("static placements", fmt.Sprintf("%d", static))
	tb.AddRow("runtime placements", fmt.Sprintf("%d", runtime))
	tb.AddRow("candidate-table hit rate", fmt.Sprintf("%.4f", ctRate))
	tb.AddRow("live state bytes", fmt.Sprintf("%d", stateBytes))
	tb.AddRow("lineage steps per answer", fmt.Sprintf("%.2f", stepsPer))
	return []*metrics.Table{ta, tb}
}
