package experiments

import (
	"fmt"

	"rjoin/internal/churn"
	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/workload"
)

// churnScenario is one column of the churn figure.
type churnScenario struct {
	name  string
	rates workload.ChurnConfig
}

// churnScenarios: from a static baseline through graceful-only churn
// (provably lossless) to crash-heavy churn (measurable answer loss).
// Rates are events per 1000 ticks.
func churnScenarios() []churnScenario {
	return []churnScenario{
		{"static", workload.ChurnConfig{}},
		{"leave", workload.ChurnConfig{LeaveRate: 30}},
		{"join+leave", workload.ChurnConfig{JoinRate: 25, LeaveRate: 25}},
		{"crash", workload.ChurnConfig{JoinRate: 10, CrashRate: 15}},
	}
}

// churnRun is one configured network with a churn manager attached.
type churnRun struct {
	*run
	mgr *churn.Manager
}

func newChurnRun(p Params, rates workload.ChurnConfig) *churnRun {
	netCfg := overlay.DefaultConfig()
	netCfg.Bounce = true
	// A denser workload than the paper default: 2-way joins over a
	// small value domain, so the answer stream is thick enough that
	// loss and duplication are measurable at every scale. The churn
	// figure studies membership dynamics, not join complexity (that is
	// Figure 6).
	wcfg := workload.PaperConfig()
	wcfg.JoinArity = 2
	wcfg.Values = 20
	r := newRunNet(p, core.DefaultConfig(), wcfg, netCfg)
	mgr := churn.New(r.eng, churn.Config{
		Rates:    rates,
		Interval: 16,
		MinNodes: p.Nodes / 2,
		Seed:     p.Seed + 7,
	})
	mgr.Start()
	return &churnRun{run: r, mgr: mgr}
}

// answerMultisets snapshots every query's delivered answers as
// multisets of canonical row strings.
func answerMultisets(eng *core.Engine) map[string]map[string]int64 {
	out := make(map[string]map[string]int64)
	for qid, answers := range eng.AllAnswers() {
		rows := make(map[string]int64, len(answers))
		for _, a := range answers {
			rows[refeval.Row(a.Values).Key()]++
		}
		out[qid] = rows
	}
	return out
}

// compareToReference folds per-query multiset comparisons into one
// network-wide Completeness.
func compareToReference(expected, got map[string]map[string]int64) metrics.Completeness {
	var total metrics.Completeness
	for qid, exp := range expected {
		c := metrics.CompareMultisets(exp, got[qid])
		total.Expected += c.Expected
		total.Delivered += c.Delivered
		total.Lost += c.Lost
		total.Duplicated += c.Duplicated
	}
	for qid, g := range got {
		if _, ok := expected[qid]; ok {
			continue
		}
		for _, n := range g {
			total.Delivered += n
			total.Duplicated += n
		}
	}
	return total
}

// FigChurn evaluates RJoin under runtime membership churn, the
// dynamic-conditions scenario the paper's stable-overlay experiments
// leave open. One fixed workload — queries submitted up front, then a
// tuple stream with the clock advancing between publications so the
// background churn and stabilization cadences fire — runs under each
// scenario; the static run is the completeness reference. Reported per
// scenario: membership events and handover traffic, answer
// completeness against the reference (graceful-only churn stays exact;
// crashes lose what died with the node), and the healing machinery's
// work (ownership re-routes, bounced in-flight messages, recovered
// query placements, counted state loss).
func FigChurn(p Params) []*metrics.Table {
	queries := p.scaled(200)
	tuples := p.scaled(600)

	type result struct {
		name     string
		stats    churn.Stats
		counters core.Counters
		traffic  int64
		churnTfc int64
		bounced  int64
		comp     metrics.Completeness
		nodes    int
	}
	var results []result
	var reference map[string]map[string]int64 // query ID → row multiset

	for _, sc := range churnScenarios() {
		r := newChurnRun(p, sc.rates)
		for i := 0; i < queries; i++ {
			if _, err := r.eng.SubmitQuery(r.node(), r.gen.Query()); err != nil {
				panic(err) // generator output is valid by construction
			}
		}
		r.eng.Run()
		for i := 0; i < tuples; i++ {
			r.eng.PublishTuple(r.node(), r.gen.Tuple())
			r.eng.RunUntil(r.eng.Sim().Now() + 8)
			r.eng.Run()
		}
		r.eng.Run()
		r.mgr.Stop()

		answers := answerMultisets(r.eng)
		if reference == nil {
			reference = answers // the static scenario runs first
		}
		results = append(results, result{
			name:     sc.name,
			stats:    r.mgr.Stats,
			counters: r.eng.Counters,
			traffic:  r.eng.Net().Traffic.Total(),
			churnTfc: r.eng.Net().TaggedTraffic(core.TagChurn).Total(),
			bounced:  r.eng.Net().Bounced,
			comp:     compareToReference(reference, answers),
			nodes:    r.eng.Ring().Size(),
		})
	}

	events := &metrics.Table{
		Title:   "Fig C(a) Membership churn and handover traffic",
		Headers: []string{"scenario", "joins", "leaves", "crashes", "final nodes", "handover msgs", "handover entries", "churn traffic", "total traffic"},
	}
	completeness := &metrics.Table{
		Title:   "Fig C(b) Answer completeness vs the static reference",
		Headers: []string{"scenario", "expected", "delivered", "lost", "duplicated", "recall"},
	}
	healing := &metrics.Table{
		Title:   "Fig C(c) Churn healing machinery",
		Headers: []string{"scenario", "rerouted", "bounced", "recovered queries", "rewrites lost", "tuples lost"},
	}
	for _, res := range results {
		events.AddRow(res.name,
			fmt.Sprintf("%d", res.stats.Joins),
			fmt.Sprintf("%d", res.stats.Leaves),
			fmt.Sprintf("%d", res.stats.Crashes),
			fmt.Sprintf("%d", res.nodes),
			fmt.Sprintf("%d", res.counters.HandoverMessages),
			fmt.Sprintf("%d", res.counters.HandoverEntries),
			fmt.Sprintf("%d", res.churnTfc),
			fmt.Sprintf("%d", res.traffic),
		)
		completeness.AddRow(res.name,
			fmt.Sprintf("%d", res.comp.Expected),
			fmt.Sprintf("%d", res.comp.Delivered),
			fmt.Sprintf("%d", res.comp.Lost),
			fmt.Sprintf("%d", res.comp.Duplicated),
			fmt.Sprintf("%.4f", res.comp.Recall()),
		)
		healing.AddRow(res.name,
			fmt.Sprintf("%d", res.counters.MessagesRerouted),
			fmt.Sprintf("%d", res.bounced),
			fmt.Sprintf("%d", res.counters.QueriesRecovered),
			fmt.Sprintf("%d", res.counters.RewritesLost),
			fmt.Sprintf("%d", res.counters.TuplesLost),
		)
	}
	return []*metrics.Table{events, completeness, healing}
}
