package share

import (
	"math/rand"
	"reflect"
	"testing"

	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// testCatalog builds the five three-attribute relations the tests and
// the fuzzer draw from.
func testCatalog(t testing.TB) *relation.Catalog {
	t.Helper()
	cat, err := relation.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"R0", "R1", "R2", "R3", "R4"} {
		s, err := relation.NewSchema(name, "A", "B", "C")
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func mustCanon(t *testing.T, cat *relation.Catalog, sql string) *Canonical {
	t.Helper()
	q := sqlparse.MustParse(sql, cat)
	c, ok := Canonicalize(q, cat)
	if !ok {
		t.Fatalf("Canonicalize(%q) declined", sql)
	}
	return c
}

// TestFormInvariance: queries that differ only in clause order — of the
// FROM list, the WHERE conjuncts, or the orientation of an equality —
// canonicalize to the same Form.
func TestFormInvariance(t *testing.T) {
	cat := testCatalog(t)
	base := mustCanon(t, cat, "select R0.A from R0,R1,R2 where R0.A=R1.A and R1.B=R2.B")
	variants := []string{
		"select R0.A from R2,R1,R0 where R1.B=R2.B and R0.A=R1.A",
		"select R0.A from R1,R0,R2 where R1.A=R0.A and R2.B=R1.B",
		// A different projection is residual, not form.
		"select R2.C, R0.B from R0,R1,R2 where R0.A=R1.A and R1.B=R2.B",
	}
	for _, sql := range variants {
		if got := mustCanon(t, cat, sql); got.Form != base.Form {
			t.Errorf("form of %q differs from base", sql)
		}
	}
}

// TestFormDistinguishes: semantically different queries never share a
// Form.
func TestFormDistinguishes(t *testing.T) {
	cat := testCatalog(t)
	forms := map[string]string{}
	for _, sql := range []string{
		"select R0.A from R0,R1 where R0.A=R1.A",
		"select R0.A from R0,R1 where R0.A=R1.B",
		"select R0.A from R0,R1 where R0.B=R1.A",
		"select R0.A from R0,R1,R2 where R0.A=R1.A and R1.A=R2.A",
		// Same conjuncts as the base but one more merged class.
		"select R0.A from R0,R1 where R0.A=R1.A and R0.B=R1.B",
		"select R0.A from R0,R1 where R0.A=R1.A within 8 ticks",
		"select R0.A from R0,R1 where R0.A=R1.A within 8 ticks tumbling",
		"select R0.A from R0,R1 where R0.A=R1.A within 8 tuples",
		"select R0.A from R0 where R0.A=7",
		"select R0.A from R0 where R0.A=8",
		"select R0.A from R0 where R0.B=7",
	} {
		c := mustCanon(t, cat, sql)
		if prev, dup := forms[c.Form]; dup {
			t.Errorf("form collision: %q vs %q", prev, sql)
		}
		forms[c.Form] = sql
	}
}

// TestCanonicalizeDeclines: forms that cannot share a canonical
// pipeline are rejected rather than mis-encoded.
func TestCanonicalizeDeclines(t *testing.T) {
	cat := testCatalog(t)
	once := sqlparse.MustParse("select R0.A from R0,R1 where R0.A=R1.A once", cat)
	if _, ok := Canonicalize(once, cat); ok {
		t.Error("Canonicalize accepted a one-time snapshot query")
	}
	// A multi-relation query whose relation appears only in selections
	// must be declined (the canonical pipeline drops selections).
	q := &query.Query{
		Select:     []query.SelectItem{{Col: query.ColRef{Rel: "R0", Attr: "A"}}},
		Relations:  []string{"R0", "R1"},
		Selections: []query.SelCond{{Col: query.ColRef{Rel: "R1", Attr: "A"}, Val: relation.Int64(3)}},
	}
	if _, ok := Canonicalize(q, cat); ok {
		t.Error("Canonicalize accepted a multi-relation query with a join-free relation")
	}
	if _, ok := Canonicalize(q, nil); ok {
		t.Error("Canonicalize accepted a nil catalog")
	}
}

// TestResidual: filters and projections factored out of the class shape
// apply correctly to full pipeline rows.
func TestResidual(t *testing.T) {
	cat := testCatalog(t)
	q := sqlparse.MustParse(
		"select R1.C, R0.B from R0,R1 where R0.A=R1.A and R0.B=5", cat)
	c, ok := Canonicalize(q, cat)
	if !ok {
		t.Fatal("Canonicalize declined")
	}
	res, ok := c.ResidualOf(q)
	if !ok {
		t.Fatal("ResidualOf declined")
	}
	// Full row layout: R0.A R0.B R0.C R1.A R1.B R1.C.
	row := []relation.Value{
		relation.Int64(1), relation.Int64(5), relation.Int64(3),
		relation.Int64(1), relation.Int64(4), relation.Int64(9),
	}
	if !res.Eval(row) {
		t.Error("residual rejected a row with R0.B=5")
	}
	got := res.Project(row)
	want := []relation.Value{relation.Int64(9), relation.Int64(5)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	row[1] = relation.Int64(6)
	if res.Eval(row) {
		t.Error("residual accepted a row with R0.B=6")
	}
}

// TestRegistryLifecycle: register, attach, detach to empty, drop —
// every index released.
func TestRegistryLifecycle(t *testing.T) {
	cat := testCatalog(t)
	r := NewRegistry()
	q := sqlparse.MustParse("select R0.A from R0,R1 where R0.A=R1.A", cat)
	can, _ := Canonicalize(q, cat)
	cls := &Class{QID: "q1", Exact: q.String(), Form: can.Form, Canonical: true, Can: can, Pipeline: can.Pipeline()}
	r.Register(cls, &Subscriber{QID: "q1"})
	if r.LookupExact(q.String()) != cls || r.LookupForm(can.Form) != cls {
		t.Fatal("registered class not found by its keys")
	}
	r.Attach(cls, &Subscriber{QID: "q2"})
	if got := r.ClassOf("q2"); got != cls {
		t.Fatalf("ClassOf(q2) = %v", got)
	}
	if c := r.Detach("q2"); c != cls || cls.Empty() {
		t.Fatal("detach of second subscriber emptied the class")
	}
	if c := r.Detach("q1"); c != cls || !cls.Empty() {
		t.Fatal("detach of last subscriber did not empty the class")
	}
	r.Drop(cls)
	if r.LookupExact(q.String()) != nil || r.LookupForm(can.Form) != nil || r.Classes() != 0 {
		t.Fatal("Drop left stale index entries")
	}
	if r.Detach("q1") != nil {
		t.Fatal("double detach returned a class")
	}
}

// TestFindParent: a three-way join attaches to the registered two-way
// class its join graph strictly contains, and non-containments are
// rejected.
func TestFindParent(t *testing.T) {
	cat := testCatalog(t)
	r := NewRegistry()
	pq := sqlparse.MustParse("select R0.A from R0,R1 where R0.A=R1.A", cat)
	pcan, _ := Canonicalize(pq, cat)
	parent := &Class{QID: "p", Form: pcan.Form, Canonical: true, Can: pcan, Pipeline: pcan.Pipeline()}
	r.Register(parent, &Subscriber{QID: "p"})

	child := mustCanon(t, cat, "select R0.A from R0,R1,R2 where R0.A=R1.A and R1.B=R2.B")
	if got := r.FindParent(child); got != parent {
		t.Fatalf("FindParent = %v, want the two-way class", got)
	}
	for _, sql := range []string{
		"select R0.A from R0,R1,R2 where R0.A=R2.A and R1.B=R2.B",                // R0.A=R1.A not implied
		"select R0.A from R0,R1,R2 where R0.A=R1.A and R1.B=R2.B within 4 ticks", // windowed child
		"select R0.A from R0,R1 where R0.A=R1.A and R0.B=R1.B",                   // same rel set, not strict superset
	} {
		if got := r.FindParent(mustCanon(t, cat, sql)); got != nil {
			t.Errorf("FindParent(%q) = %v, want nil", sql, got)
		}
	}
}

// fuzzQuery builds a random shareable query over the test catalog from
// a seeded stream, returning the query plus an independent semantic
// fingerprint of (relation set, join classes, window) used by the
// collision probe.
func fuzzQuery(rng *rand.Rand, cat *relation.Catalog) *query.Query {
	names := []string{"R0", "R1", "R2", "R3", "R4"}
	attrs := []string{"A", "B", "C"}
	n := 1 + rng.Intn(4)
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	rels := append([]string(nil), names[:n]...)
	q := &query.Query{Relations: rels}
	col := func(rel string) query.ColRef {
		return query.ColRef{Rel: rel, Attr: attrs[rng.Intn(len(attrs))]}
	}
	// Chain joins keep every relation join-connected; extra random
	// conjuncts merge classes.
	for i := 0; i+1 < n; i++ {
		q.Joins = append(q.Joins, query.JoinCond{Left: col(rels[i]), Right: col(rels[i+1])})
	}
	for i := rng.Intn(3); i > 0 && n > 1; i-- {
		q.Joins = append(q.Joins, query.JoinCond{
			Left: col(rels[rng.Intn(n)]), Right: col(rels[rng.Intn(n)]),
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		q.Selections = append(q.Selections, query.SelCond{
			Col: col(rels[rng.Intn(n)]), Val: relation.Int64(int64(rng.Intn(4))),
		})
	}
	for i := 1 + rng.Intn(3); i > 0; i-- {
		if rng.Intn(4) == 0 {
			q.Select = append(q.Select, query.SelectItem{IsConst: true, Const: relation.Int64(int64(rng.Intn(10)))})
		} else {
			q.Select = append(q.Select, query.SelectItem{Col: col(rels[rng.Intn(n)])})
		}
	}
	switch rng.Intn(4) {
	case 1:
		q.Window = query.WindowSpec{Kind: query.WindowTime, Size: int64(1 + rng.Intn(16))}
	case 2:
		q.Window = query.WindowSpec{Kind: query.WindowTuples, Size: int64(1 + rng.Intn(16)), Tumbling: rng.Intn(2) == 0}
	}
	return q
}

// permute returns a clause-order permutation of q with identical
// semantics: shuffled FROM list, shuffled and flipped join conjuncts,
// shuffled selections.
func permute(rng *rand.Rand, q *query.Query) *query.Query {
	p := q.Clone()
	rng.Shuffle(len(p.Relations), func(i, j int) {
		p.Relations[i], p.Relations[j] = p.Relations[j], p.Relations[i]
	})
	rng.Shuffle(len(p.Joins), func(i, j int) { p.Joins[i], p.Joins[j] = p.Joins[j], p.Joins[i] })
	for i := range p.Joins {
		if rng.Intn(2) == 0 {
			p.Joins[i].Left, p.Joins[i].Right = p.Joins[i].Right, p.Joins[i].Left
		}
	}
	rng.Shuffle(len(p.Selections), func(i, j int) {
		p.Selections[i], p.Selections[j] = p.Selections[j], p.Selections[i]
	})
	return p
}

// semantics is the independent (non-Form) description of a canonical
// form; two queries are class-equivalent iff these are deep-equal.
type semantics struct {
	Rels       []string
	Classes    [][]query.ColRef
	Selections []query.SelCond
	Window     query.WindowSpec
}

func semanticsOf(c *Canonical) semantics {
	return semantics{Rels: c.Rels, Classes: c.Classes, Selections: c.Selections, Window: c.Window}
}

// FuzzCanonicalize checks the two canonicalization invariants on random
// queries: (1) the Form is invariant under any permutation of the
// relation list, join conjuncts (including orientation) and selection
// list; (2) the Form never collides — byte-equal Forms imply identical
// class semantics (quickcheck-style collision probe across the whole
// fuzz corpus of one run).
func FuzzCanonicalize(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1 << 30, -9} {
		f.Add(seed)
	}
	cat := testCatalog(f)
	byForm := map[string]semantics{}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 32; iter++ {
			q := fuzzQuery(rng, cat)
			c, ok := Canonicalize(q, cat)
			if !ok {
				t.Fatalf("Canonicalize declined generated query %s", q.String())
			}
			for v := 0; v < 4; v++ {
				pc, ok := Canonicalize(permute(rng, q), cat)
				if !ok {
					t.Fatalf("Canonicalize declined a permutation of %s", q.String())
				}
				if pc.Form != c.Form {
					t.Fatalf("form not permutation-invariant for %s", q.String())
				}
			}
			sem := semanticsOf(c)
			if prev, seen := byForm[c.Form]; seen {
				if !reflect.DeepEqual(prev, sem) {
					t.Fatalf("form collision: %+v vs %+v", prev, sem)
				}
			} else {
				byForm[c.Form] = sem
			}
			// The residual must reproduce the subscriber's projection on
			// any full row.
			res, ok := c.ResidualOf(q)
			if !ok {
				t.Fatalf("ResidualOf declined for %s", q.String())
			}
			row := make([]relation.Value, c.Arity())
			for i := range row {
				row[i] = relation.Int64(int64(rng.Intn(4)))
			}
			if got := res.Project(row); len(got) != len(q.Select) {
				t.Fatalf("projection arity %d, want %d", len(got), len(q.Select))
			}
		}
	})
}
