// Package share implements multi-query optimization for RJoin: it maps
// each submitted query to a canonical form — relation set, join-graph
// attribute equivalence classes and window clock — and keeps a registry
// of equivalence classes so the engine stores and rewrites one shared
// pipeline per class. Everything a query asks for beyond the class
// shape (constants, filter predicates, projection lists) is split out
// as a per-subscriber residual that a fan-out table applies at the
// completion node before emitting answer rows. A query whose join
// graph strictly contains an existing class's attaches to that class's
// completed rewrites (containment sharing) instead of starting from
// scratch.
//
// The package is pure bookkeeping: it never sends messages and never
// touches the simulator. The registry is written only from the
// engine's coordinator context (SubmitQuery / Unsubscribe); the
// immutable Fanout snapshots it produces are read lock-free by the
// message handlers, the same discipline the engine's aggregate-spec
// table follows.
package share

import (
	"sort"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// formVersion tags the canonical-form encoding; bump it if the layout
// of the injective encoding below ever changes.
const formVersion = "rjoin/share/v1"

// Pred is one residual filter conjunct: the row value at Pos must equal
// Val. Positions index the shared pipeline's full output row.
type Pred struct {
	Pos int
	Val relation.Value
}

// ProjItem is one column of a subscriber's projection: either a
// constant (COUNT(*) rides through here as the constant 1, exactly as
// in the query representation) or a position in the pipeline's full
// output row.
type ProjItem struct {
	IsConst bool
	Const   relation.Value
	Pos     int
}

// Residual is what remains of a subscriber's query after the canonical
// pipeline shape is factored out: filter predicates over constants and
// the projection list. DISTINCT memory and aggregate specs stay
// per-subscriber on the owner side and are not represented here.
type Residual struct {
	Preds []Pred
	Items []ProjItem
}

// Eval reports whether a completed pipeline row satisfies every
// residual predicate.
func (r *Residual) Eval(row []relation.Value) bool {
	for _, p := range r.Preds {
		if !row[p.Pos].Equal(p.Val) {
			return false
		}
	}
	return true
}

// Project builds the subscriber-shaped answer row from a completed
// pipeline row.
func (r *Residual) Project(row []relation.Value) []relation.Value {
	out := make([]relation.Value, len(r.Items))
	for i, it := range r.Items {
		if it.IsConst {
			out[i] = it.Const
		} else {
			out[i] = row[it.Pos]
		}
	}
	return out
}

// Key returns an injective encoding of the residual, used by tests to
// check that (canonical form, residual) together never collide across
// semantically different queries.
func (r *Residual) Key() string {
	b := relation.AppendCanonical(nil, relation.Int64(int64(len(r.Preds))))
	for _, p := range r.Preds {
		b = relation.AppendCanonical(b, relation.Int64(int64(p.Pos)))
		b = relation.AppendCanonical(b, p.Val)
	}
	b = relation.AppendCanonical(b, relation.Int64(int64(len(r.Items))))
	for _, it := range r.Items {
		if it.IsConst {
			b = relation.AppendCanonical(b, relation.Int64(1))
			b = relation.AppendCanonical(b, it.Const)
		} else {
			b = relation.AppendCanonical(b, relation.Int64(0))
			b = relation.AppendCanonical(b, relation.Int64(int64(it.Pos)))
		}
	}
	return string(b)
}

// Canonical is the canonical form of a query: the part every member of
// an equivalence class agrees on. Two queries share a pipeline exactly
// when their Forms are byte-identical.
type Canonical struct {
	// Form is the injective encoding of (relation set, window clock,
	// join equivalence classes, and — for single-relation queries —
	// the selection conjuncts, which are then the only placement keys
	// the pipeline has).
	Form string
	// Rels is the relation set in sorted order; the pipeline's full
	// output row concatenates their schema rows in this order.
	Rels []string
	// Classes are the equi-join equivalence classes: members sorted,
	// classes ordered by first member, so the layout is invariant
	// under any permutation of the source query's clauses.
	Classes [][]query.ColRef
	// Selections is the sorted selection list of a single-relation
	// form (nil for multi-relation forms, where selections become
	// per-subscriber residual predicates).
	Selections []query.SelCond
	// Window is the shared window clock.
	Window query.WindowSpec

	schemas []*relation.Schema
	pos     map[query.ColRef]int
	arity   int
}

// Canonicalize maps q to its canonical form. ok is false when the
// query cannot share a canonical pipeline: one-time snapshots (they
// keep no standing state), relations missing from the catalog, or a
// multi-relation query with a relation held only by selections (the
// canonical pipeline drops selections, which would leave that relation
// an unindexable cross product).
func Canonicalize(q *query.Query, cat *relation.Catalog) (*Canonical, bool) {
	if q == nil || cat == nil || q.OneTime || len(q.Relations) == 0 {
		return nil, false
	}
	c := &Canonical{
		Rels:   append([]string(nil), q.Relations...),
		Window: q.Window,
		pos:    make(map[query.ColRef]int),
	}
	sort.Strings(c.Rels)
	for _, r := range c.Rels {
		s, ok := cat.Schema(r)
		if !ok {
			return nil, false
		}
		for i, a := range s.Attrs {
			c.pos[query.ColRef{Rel: r, Attr: a}] = c.arity + i
		}
		c.schemas = append(c.schemas, s)
		c.arity += s.Arity()
	}
	if len(c.Rels) > 1 {
		inJoin := make(map[string]bool, len(c.Rels))
		for _, j := range q.Joins {
			inJoin[j.Left.Rel] = true
			inJoin[j.Right.Rel] = true
		}
		for _, r := range c.Rels {
			if !inJoin[r] {
				return nil, false
			}
		}
	} else {
		c.Selections = append([]query.SelCond(nil), q.Selections...)
		sort.Slice(c.Selections, func(i, j int) bool {
			a, b := c.Selections[i], c.Selections[j]
			if a.Col != b.Col {
				if a.Col.Rel != b.Col.Rel {
					return a.Col.Rel < b.Col.Rel
				}
				return a.Col.Attr < b.Col.Attr
			}
			return valueLess(a.Val, b.Val)
		})
	}
	c.Classes = joinClasses(q.Joins)
	c.Form = c.encode()
	return c, true
}

// valueLess is a total order on constants used only to canonicalize
// selection lists (kind, then value).
func valueLess(a, b relation.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Int != b.Int {
		return a.Int < b.Int
	}
	return a.Str < b.Str
}

func colLess(a, b query.ColRef) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	return a.Attr < b.Attr
}

// joinClasses computes the equi-join equivalence classes of the join
// conjuncts in a canonical layout: members sorted, classes ordered by
// their first (smallest) member.
func joinClasses(joins []query.JoinCond) [][]query.ColRef {
	if len(joins) == 0 {
		return nil
	}
	parent := make(map[query.ColRef]query.ColRef)
	var find func(c query.ColRef) query.ColRef
	find = func(c query.ColRef) query.ColRef {
		p, ok := parent[c]
		if !ok || p == c {
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	var order []query.ColRef
	seen := make(map[query.ColRef]bool)
	note := func(c query.ColRef) {
		if !seen[c] {
			seen[c] = true
			order = append(order, c)
		}
	}
	for _, j := range joins {
		note(j.Left)
		note(j.Right)
		ra, rb := find(j.Left), find(j.Right)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[query.ColRef][]query.ColRef)
	for _, c := range order {
		root := find(c)
		groups[root] = append(groups[root], c)
	}
	var out [][]query.ColRef
	done := make(map[query.ColRef]bool)
	for _, c := range order {
		root := find(c)
		if done[root] {
			continue
		}
		done[root] = true
		cls := append([]query.ColRef(nil), groups[root]...)
		sort.Slice(cls, func(i, j int) bool { return colLess(cls[i], cls[j]) })
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool { return colLess(out[i][0], out[j][0]) })
	return out
}

// encode builds the injective Form encoding. Every component rides
// through relation.AppendCanonical (kind tag + length + payload), and
// variable-length lists are count-prefixed, so distinct forms can
// never encode to the same bytes.
func (c *Canonical) encode() string {
	b := relation.AppendCanonical(nil, relation.String64(formVersion))
	b = relation.AppendCanonical(b, relation.Int64(int64(len(c.Rels))))
	for _, r := range c.Rels {
		b = relation.AppendCanonical(b, relation.String64(r))
	}
	b = relation.AppendCanonical(b, relation.Int64(int64(c.Window.Kind)))
	b = relation.AppendCanonical(b, relation.Int64(c.Window.Size))
	tumbling := int64(0)
	if c.Window.Tumbling {
		tumbling = 1
	}
	b = relation.AppendCanonical(b, relation.Int64(tumbling))
	b = relation.AppendCanonical(b, relation.Int64(int64(len(c.Classes))))
	for _, cls := range c.Classes {
		b = relation.AppendCanonical(b, relation.Int64(int64(len(cls))))
		for _, col := range cls {
			b = relation.AppendCanonical(b, relation.String64(col.Rel))
			b = relation.AppendCanonical(b, relation.String64(col.Attr))
		}
	}
	b = relation.AppendCanonical(b, relation.Int64(int64(len(c.Selections))))
	for _, s := range c.Selections {
		b = relation.AppendCanonical(b, relation.String64(s.Col.Rel))
		b = relation.AppendCanonical(b, relation.String64(s.Col.Attr))
		b = relation.AppendCanonical(b, s.Val)
	}
	return string(b)
}

// Pipeline builds the shared pipeline query of the class: the full
// output row (every attribute of every relation, schema order within
// the sorted relation order), one chain of join conjuncts per
// equivalence class, and — single-relation forms only — the canonical
// selection list. DISTINCT, GROUP BY and aggregate markers never
// appear: those are per-subscriber residual semantics applied on the
// owner side. The caller stamps ID, Owner, InsertTime and MinPub.
func (c *Canonical) Pipeline() *query.Query {
	sel := make([]query.SelectItem, 0, c.arity)
	for i, r := range c.Rels {
		for _, a := range c.schemas[i].Attrs {
			sel = append(sel, query.SelectItem{Col: query.ColRef{Rel: r, Attr: a}})
		}
	}
	var joins []query.JoinCond
	for _, cls := range c.Classes {
		for k := 0; k+1 < len(cls); k++ {
			joins = append(joins, query.JoinCond{Left: cls[k], Right: cls[k+1]})
		}
	}
	return &query.Query{
		Select:     sel,
		Relations:  append([]string(nil), c.Rels...),
		Joins:      joins,
		Selections: append([]query.SelCond(nil), c.Selections...),
		Window:     c.Window,
	}
}

// ResidualOf extracts q's residual against this canonical form: every
// select item becomes a constant or a position in the pipeline's full
// row, and (multi-relation forms) every selection conjunct becomes a
// predicate over a row position. ok is false when q references a
// column outside the form — callers only pair queries with the form
// they canonicalized to, so that indicates a caller bug.
func (c *Canonical) ResidualOf(q *query.Query) (*Residual, bool) {
	res := &Residual{Items: make([]ProjItem, 0, len(q.Select))}
	for _, s := range q.Select {
		if s.IsConst {
			res.Items = append(res.Items, ProjItem{IsConst: true, Const: s.Const})
			continue
		}
		p, ok := c.pos[s.Col]
		if !ok {
			return nil, false
		}
		res.Items = append(res.Items, ProjItem{Pos: p})
	}
	if len(c.Rels) > 1 {
		for _, s := range q.Selections {
			p, ok := c.pos[s.Col]
			if !ok {
				return nil, false
			}
			res.Preds = append(res.Preds, Pred{Pos: p, Val: s.Val})
		}
	}
	return res, true
}

// RelSlice locates one relation's row inside a pipeline's full output
// row: the completed row's values [Off, Off+Schema.Arity()) are that
// relation's attributes in schema order.
type RelSlice struct {
	Schema *relation.Schema
	Off    int
}

// RelSlices returns the per-relation layout of the pipeline's full
// output row, used to synthesize pseudo-tuples for containment
// sharing.
func (c *Canonical) RelSlices() []RelSlice {
	out := make([]RelSlice, len(c.Rels))
	off := 0
	for i := range c.Rels {
		out[i] = RelSlice{Schema: c.schemas[i], Off: off}
		off += c.schemas[i].Arity()
	}
	return out
}

// Arity is the width of the pipeline's full output row.
func (c *Canonical) Arity() int { return c.arity }

// Subscriber is one continuous query attached to a class: its own
// query ID (answer identity), owner node, insertion time (rows whose
// earliest tuple predates it are filtered out at the fan-out), and
// residual. A nil Residual means the subscriber's query is
// byte-identical to the pipeline and rows pass through unchanged.
type Subscriber struct {
	QID        string
	Owner      uint64
	InsertTime int64
	Res        *Residual
}

// Kid is a containment child attached to a parent class: a query
// whose join graph strictly contains the parent's. The child places
// no pipeline of its own; every completed parent row is re-played
// through the child's pipeline as pseudo-tuples, and the resulting
// partial rewrite is dispatched from the completion node.
type Kid struct {
	QID        string
	Pipeline   *query.Query
	InsertTime int64
	Rels       []RelSlice
}

// Class is one equivalence class in the registry: the shared pipeline
// (identified by the first subscriber's query ID), its subscribers,
// and any containment children feeding off its completions.
type Class struct {
	// QID is the pipeline identity: the first subscriber's query ID.
	QID string
	// Exact is the canonical SQL rendering used for byte-identical
	// duplicate detection.
	Exact string
	// Form is the canonical-form key ("" for exact-only classes whose
	// pipeline is the subscriber's query verbatim).
	Form string
	// Canonical marks classes whose pipeline is the canonical
	// full-row shape (subscribers then carry projection residuals).
	Canonical bool
	// Pipeline is the class's pipeline query (for containment
	// children, the unplaced query replayed over parent completions).
	Pipeline *query.Query
	// Can is the canonical form (nil for exact-only classes).
	Can *Canonical
	// Parent is the containment parent, nil when the class owns a
	// placed pipeline.
	Parent *Class
	Kids   []*Kid
	Subs   []*Subscriber
}

// Empty reports whether nothing references the class any more.
func (c *Class) Empty() bool { return len(c.Subs) == 0 && len(c.Kids) == 0 }

// Fanout is the immutable completion-node snapshot of a class: built
// fresh on every membership change and swapped in from coordinator
// context, read lock-free by the message handlers.
type Fanout struct {
	Subs []FanSub
	Kids []*Kid
}

// FanSub is one subscriber entry of a Fanout.
type FanSub struct {
	QID        string
	Owner      uint64
	InsertTime int64
	Res        *Residual
}

// Snapshot builds the current Fanout of the class.
func (c *Class) Snapshot() *Fanout {
	fo := &Fanout{
		Subs: make([]FanSub, len(c.Subs)),
		Kids: append([]*Kid(nil), c.Kids...),
	}
	for i, s := range c.Subs {
		fo.Subs[i] = FanSub{QID: s.QID, Owner: s.Owner, InsertTime: s.InsertTime, Res: s.Res}
	}
	return fo
}

// Registry holds every live equivalence class, keyed three ways: by
// exact SQL rendering, by canonical form, and by pipeline/subscriber
// query ID. It is written only from the engine's coordinator context.
type Registry struct {
	bySQL   map[string]*Class
	byForm  map[string]*Class
	classes map[string]*Class // pipeline QID -> class
	subs    map[string]*Class // subscriber QID -> class
	// order lists classes in creation order: the deterministic
	// iteration sequence for containment-parent search.
	order []*Class
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		bySQL:   make(map[string]*Class),
		byForm:  make(map[string]*Class),
		classes: make(map[string]*Class),
		subs:    make(map[string]*Class),
	}
}

// LookupExact returns the class registered under the SQL rendering.
func (r *Registry) LookupExact(sql string) *Class { return r.bySQL[sql] }

// LookupForm returns the class registered under the canonical form.
func (r *Registry) LookupForm(form string) *Class { return r.byForm[form] }

// ClassOf returns the class a subscriber query ID is attached to.
func (r *Registry) ClassOf(subQID string) *Class { return r.subs[subQID] }

// Get returns the class with the given pipeline QID.
func (r *Registry) Get(qid string) *Class { return r.classes[qid] }

// Classes reports the number of live classes.
func (r *Registry) Classes() int { return len(r.classes) }

// Register adds a new class and its first subscriber. The exact/form
// keys are claimed only if free (a key can be occupied when sharing
// declined to attach, e.g. a DISTINCT duplicate of a non-canonical
// class).
func (r *Registry) Register(cls *Class, first *Subscriber) {
	cls.Subs = append(cls.Subs, first)
	r.classes[cls.QID] = cls
	r.subs[first.QID] = cls
	if cls.Exact != "" {
		if _, taken := r.bySQL[cls.Exact]; !taken {
			r.bySQL[cls.Exact] = cls
		}
	}
	if cls.Form != "" {
		if _, taken := r.byForm[cls.Form]; !taken {
			r.byForm[cls.Form] = cls
		}
	}
	r.order = append(r.order, cls)
}

// Attach adds a further subscriber to an existing class.
func (r *Registry) Attach(cls *Class, sub *Subscriber) {
	cls.Subs = append(cls.Subs, sub)
	r.subs[sub.QID] = cls
}

// Detach removes a subscriber from its class and returns the class,
// or nil if the QID is unknown.
func (r *Registry) Detach(subQID string) *Class {
	cls := r.subs[subQID]
	if cls == nil {
		return nil
	}
	delete(r.subs, subQID)
	for i, s := range cls.Subs {
		if s.QID == subQID {
			cls.Subs = append(cls.Subs[:i], cls.Subs[i+1:]...)
			break
		}
	}
	return cls
}

// DetachKid removes a containment child entry from its parent.
func (r *Registry) DetachKid(parent *Class, kidQID string) {
	for i, k := range parent.Kids {
		if k.QID == kidQID {
			parent.Kids = append(parent.Kids[:i], parent.Kids[i+1:]...)
			return
		}
	}
}

// Drop removes a class from every index. Keys are released only if
// they still point at this class.
func (r *Registry) Drop(cls *Class) {
	delete(r.classes, cls.QID)
	if r.bySQL[cls.Exact] == cls {
		delete(r.bySQL, cls.Exact)
	}
	if cls.Form != "" && r.byForm[cls.Form] == cls {
		delete(r.byForm, cls.Form)
	}
	for i, c := range r.order {
		if c == cls {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// FindParent searches for a containment parent of the canonical form:
// an existing class whose join graph is a strict prefix of can's. Of
// the eligible classes the one covering the most relations wins, ties
// broken by creation order, so the choice is deterministic.
func (r *Registry) FindParent(can *Canonical) *Class {
	var best *Class
	for _, cls := range r.order {
		if !containsParent(cls, can) {
			continue
		}
		if best == nil || len(cls.Can.Rels) > len(best.Can.Rels) {
			best = cls
		}
	}
	return best
}

// containsParent reports whether p's join graph is a strict prefix of
// can's: p owns a placed canonical pipeline over at least two
// relations, both forms are unwindowed and selection-free, p's
// relation set is a strict subset of can's, and every equivalence
// class of p lies inside a single equivalence class of can. Conjuncts
// can is stricter about (classes it merges that p keeps apart) are
// enforced when the parent row is re-played through the child
// pipeline, so they do not block sharing.
func containsParent(p *Class, can *Canonical) bool {
	if !p.Canonical || p.Parent != nil || p.Can == nil {
		return false
	}
	pc := p.Can
	if pc.Window.Enabled() || can.Window.Enabled() {
		return false
	}
	if len(pc.Selections) != 0 {
		return false
	}
	if len(pc.Rels) < 2 || len(pc.Rels) >= len(can.Rels) {
		return false
	}
	relSet := make(map[string]bool, len(can.Rels))
	for _, r := range can.Rels {
		relSet[r] = true
	}
	for _, r := range pc.Rels {
		if !relSet[r] {
			return false
		}
	}
	colClass := make(map[query.ColRef]int)
	for i, cls := range can.Classes {
		for _, col := range cls {
			colClass[col] = i
		}
	}
	for _, cls := range pc.Classes {
		idx, ok := colClass[cls[0]]
		if !ok {
			return false
		}
		for _, col := range cls[1:] {
			if j, ok := colClass[col]; !ok || j != idx {
				return false
			}
		}
	}
	return true
}
